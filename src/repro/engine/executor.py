"""Sharded Monte-Carlo executor: the single entry point for engine work.

The executor takes a :class:`~repro.engine.tasks.TaskSpec`, splits the
requested shots (or sample attempts) into shards, hands the shards to a
pluggable execution :class:`~repro.engine.backends.Backend` (in-process, a
local process pool, or a fleet of remote socket workers), and merges the
per-shard statistics with the binomial pooling from
:mod:`repro.analysis.stats`.

Determinism contract
--------------------
Shard ``i`` of a task always draws its generator from RNG child stream ``i``
of the run's root seed (:func:`repro.engine.rng.child_stream`), and merged
statistics are plain sums keyed by shard slot, so results are
**bit-identical for any backend, worker count or host count** and for
repeated runs with the same seed.  As a special case, a fixed-policy run
that fits in a single shard seeds the simulator with the *raw* user seed -
exactly what the pre-engine experiment drivers did - so legacy seeds keep
producing legacy numbers.

Workers memoise a warm :class:`~repro.engine.pipeline.DecodingPipeline`
(circuit, DEM, decoder, geodesic/syndrome caches) per task content hash, so a
task's expensive setup is paid once per process, not once per shard — and
successive shards and scheduler waves of the same task decode against
already-cached geodesics and memoised syndromes.  The memo lives at module
scope precisely so it warms up wherever the shard functions run: a pool
worker on this host and a ``python -m repro.engine.worker`` process on
another machine get the same treatment.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.stats import BinomialEstimate
from ..core.patch import AdaptedPatch
from ..env import env_choice, env_hosts, env_int, env_str
from ..decoder.matching import MatchingGraph, MwpmDecoder
from ..decoder.unionfind import UnionFindDecoder
from ..stabilizer.dem import build_detector_error_model
from ..stabilizer.packed import FusedProgram, fused_shot_budget
from .backends import BACKEND_NAMES, Backend, create_backend
from .cache import ResultCache
from .pipeline import DecodingPipeline, _memo_cache
from .rng import Seed, as_seed_sequence, child_stream, from_fingerprint, seed_fingerprint
from .scheduler import ShotPolicy, ShotScheduler, rng_mode_shot_cost
from .tasks import LerPointTask, PatchSampleTask, YieldTask, canonical_json

__all__ = [
    "EngineConfig",
    "FusionStats",
    "LerResult",
    "SweepItem",
    "WaveUpdate",
    "Engine",
    "default_engine",
    "set_default_engine",
    "ler_cache_key",
    "seeded_task_key",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EngineConfig:
    """Execution knobs (none of them may change the numbers a task produces).

    Attributes
    ----------
    max_workers:
        Process-pool width of the ``"process"`` backend; ``1`` (the
        default) runs everything in-process.
    shard_size:
        Maximum shots per shard.  Runs that fit in one shard follow the
        legacy single-stream seeding, so the default is chosen above the
        laptop-scale shot counts used by the tests and benchmarks.
    cache_dir:
        Root of the on-disk result cache; ``None`` disables caching.
    backend:
        Execution strategy: ``"process"`` (the default — a local process
        pool, or in-process when ``max_workers`` is 1), ``"serial"``
        (force in-process regardless of ``max_workers``), or ``"socket"``
        (remote ``repro.engine.worker`` processes listed in ``hosts``).
        Results are backend-invariant, so the choice is excluded from
        cache keys.
    hosts:
        ``(host, port)`` pairs of remote workers for the socket backend;
        ignored by the other backends.  An entry per job slot — list a
        host twice to keep two shards in flight there.
    fuse_tasks:
        Maximum shards per fused dispatch group in ``run_sweep`` (see
        :func:`_plan_fused_groups`); ``1`` disables fusion.  Pure dispatch
        batching — results and cache records are fusion-invariant, so the
        knob is excluded from cache keys like the backend choice.
    fuse_shots:
        Per-group budget, in exact-shot equivalents, that a fused group's
        weighted shard costs may not exceed (bitgen shards count ~1/3 —
        :func:`~repro.engine.scheduler.rng_mode_shot_cost`).  Keeps fusion
        to the many-small-shard regime it pays off in: one oversized shard
        already saturates a worker, so batching it only delays neighbours.
    """

    max_workers: int = 1
    shard_size: int = 4096
    cache_dir: Optional[str] = None
    backend: str = "process"
    hosts: Tuple[Tuple[str, int], ...] = ()
    fuse_tasks: int = 8
    fuse_shots: int = 8192

    def __post_init__(self) -> None:
        if self.max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if self.shard_size <= 0:
            raise ValueError("shard_size must be positive")
        if self.fuse_tasks <= 0:
            raise ValueError("fuse_tasks must be positive (1 disables fusion)")
        if self.fuse_shots <= 0:
            raise ValueError("fuse_shots must be positive")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"valid backends: {', '.join(BACKEND_NAMES)}"
            )
        if self.backend == "socket" and not self.hosts:
            raise ValueError("socket backend needs at least one (host, port)")

    @classmethod
    def from_env(cls, env=None) -> "EngineConfig":
        """Read ``REPRO_WORKERS`` / ``REPRO_CACHE`` / ``REPRO_SHARD_SIZE``
        plus the backend selection (``REPRO_BACKEND`` / ``REPRO_HOSTS``)
        and the fusion budgets (``REPRO_FUSE_TASKS`` / ``REPRO_FUSE_SHOTS``).

        Every variable is validated up front (:mod:`repro.env`): garbage,
        non-positive or malformed values raise a ``ValueError`` naming the
        variable instead of surfacing later as a bare traceback.
        """
        env = os.environ if env is None else env
        workers = env_int("REPRO_WORKERS", 1, minimum=1, env=env)
        cache = env_str("REPRO_CACHE", env=env)
        shard = env_int("REPRO_SHARD_SIZE", 4096, minimum=1, env=env)
        backend = env_choice("REPRO_BACKEND", "process", BACKEND_NAMES,
                             env=env)
        hosts = env_hosts("REPRO_HOSTS", env=env)
        fuse_tasks = env_int("REPRO_FUSE_TASKS", 8, minimum=1, env=env)
        fuse_shots = env_int("REPRO_FUSE_SHOTS", 8192, minimum=1, env=env)
        return cls(max_workers=workers, shard_size=shard, cache_dir=cache,
                   backend=backend, hosts=hosts,
                   fuse_tasks=fuse_tasks, fuse_shots=fuse_shots)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LerResult:
    """Merged outcome of one LER task run through the engine."""

    task: LerPointTask
    failures: int
    shots: int
    num_detectors: int
    num_dem_errors: int
    num_shards: int
    from_cache: bool = False

    @property
    def estimate(self) -> BinomialEstimate:
        return BinomialEstimate(failures=self.failures, shots=self.shots)

    @property
    def logical_error_rate(self) -> float:
        return self.failures / self.shots

    def to_memory_result(self):
        """Adapt to the legacy :class:`MemoryExperimentResult` shape."""
        from ..experiments.memory import MemoryExperimentResult

        return MemoryExperimentResult(
            physical_error_rate=self.task.physical_error_rate,
            rounds=self.task.rounds,
            shots=self.shots,
            failures=self.failures,
            num_detectors=self.num_detectors,
            num_dem_errors=self.num_dem_errors,
            decoder=self.task.decoder,
        )


@dataclass(frozen=True)
class SweepItem:
    """One (task, shot policy, seed) cell of a sweep.

    ``Engine.run_sweep`` schedules every pending item's shards into one pool,
    so cells with different policies (adaptive waves next to fixed budgets)
    overlap instead of draining one task at a time.  The seed is the item's
    *own* root: callers splitting a sweep from a single user seed derive one
    child stream per item (see :meth:`Engine.run_ler_many`).
    """

    task: LerPointTask
    policy: ShotPolicy
    seed: Seed = None


@dataclass(frozen=True)
class WaveUpdate:
    """Progress of one sweep item after a scheduler wave merged.

    Delivered to the ``on_wave`` callback of :meth:`Engine.run_sweep` from
    the submitting process, in the deterministic wave order of each item
    (waves of *different* items may interleave with backend timing, but an
    item's own updates always arrive in wave order with strictly growing
    cumulative counts).  ``failures``/``shots`` are the item's merged totals
    so far — exactly what the scheduler's next stop decision will see — so a
    service layer can persist them as a partial result without re-deriving
    any statistics.
    """

    index: int          # position of the item in the sweep
    wave: int           # 0-based merged-wave counter of this item
    wave_failures: int  # failures contributed by this wave alone
    wave_shots: int     # shots contributed by this wave alone
    failures: int       # cumulative failures after the merge
    shots: int          # cumulative shots after the merge


@dataclass(frozen=True)
class FusionStats:
    """Fused-dispatch breakdown of one executed ``run_sweep`` call.

    Observability only: fusion shares dispatch overhead and draw scratch,
    never variates, so none of these counters can correlate with the
    numbers a sweep produces (grouping depends on backend timing; results
    are grouping-invariant by construction).  ``Engine.run_sweep`` stores
    the stats of its last call on :attr:`Engine.last_fusion`, and the sweep
    benchmarks surface them in their BENCH JSON artifacts so fusion
    efficacy is visible from CI.
    """

    dispatches: int = 0        # backend submissions + inline executions
    fused_groups: int = 0      # dispatches that carried >= 2 shards
    fused_shards: int = 0      # shards that travelled inside a fused group
    total_shards: int = 0      # every shard the sweep executed
    fused_tasks: int = 0       # distinct sweep items per fused group, summed
    fused_shots: int = 0       # shots sampled inside fused groups
    total_shots: int = 0       # every shot the sweep sampled
    max_group_shards: int = 0  # largest single dispatch, in shards

    @property
    def fused_shot_fraction(self) -> float:
        """Fraction of sampled shots that rode in a fused group."""
        return self.fused_shots / self.total_shots if self.total_shots else 0.0

    @property
    def mean_group_tasks(self) -> float:
        """Mean distinct sweep items per fused group (0 when nothing fused)."""
        return self.fused_tasks / self.fused_groups if self.fused_groups else 0.0

    def payload(self) -> dict:
        """JSON-able counters + derived ratios for BENCH artifacts."""
        return {
            "dispatches": self.dispatches,
            "fused_groups": self.fused_groups,
            "fused_shards": self.fused_shards,
            "total_shards": self.total_shards,
            "fused_tasks": self.fused_tasks,
            "fused_shots": self.fused_shots,
            "total_shots": self.total_shots,
            "max_group_shards": self.max_group_shards,
            "fused_shot_fraction": self.fused_shot_fraction,
            "mean_group_tasks": self.mean_group_tasks,
        }


class _SweepTaskRun:
    """Mutable progress of one sweep item while its shards are in flight.

    Shard seeds and wave bookkeeping reproduce the historical task-by-task
    loop exactly: shard ``i`` draws child stream ``i`` of the item seed (or
    the raw seed for a legacy single-shard fixed run), and the scheduler
    only sees *merged* statistics of complete waves, so the shard plan —
    and the result — is independent of completion order, worker count and
    execution backend.
    """

    def __init__(self, index: int, item: SweepItem, shard_size: int):
        self.index = index
        self.item = item
        self.sched = ShotScheduler(item.policy, shard_size)
        self.root = as_seed_sequence(item.seed)
        self.single_shard = (not item.policy.is_adaptive
                             and item.policy.max_shots <= shard_size)
        self.key: Optional[str] = None
        self.failures = 0
        self.num_shards = 0
        self.num_detectors = 0
        self.num_dem = 0
        self.wave_shards: List[Tuple[int, int]] = []
        self.wave_outs: List[Optional[Tuple[int, int, int]]] = []
        self.wave_pending = 0
        self.waves_merged = 0

    def shard_seed(self, shard_index: int) -> Seed:
        if self.single_shard:
            return self.item.seed
        return child_stream(self.root, shard_index)

    def begin_wave(self, wave: List[Tuple[int, int]]) -> None:
        self.wave_shards = wave
        self.wave_outs = [None] * len(wave)
        self.wave_pending = len(wave)

    def complete_slot(self, slot: int, out: Tuple[int, int, int]) -> bool:
        """Record one shard result; True when the whole wave has landed."""
        self.wave_outs[slot] = out
        self.wave_pending -= 1
        return self.wave_pending == 0

    def merge_wave(self) -> WaveUpdate:
        outs = self.wave_outs
        wave_failures = sum(o[0] for o in outs)
        wave_shots = sum(n for _, n in self.wave_shards)
        self.num_detectors, self.num_dem = outs[0][1], outs[0][2]
        self.failures += wave_failures
        self.num_shards += len(outs)
        self.sched.record(wave_failures, wave_shots)
        update = WaveUpdate(index=self.index, wave=self.waves_merged,
                            wave_failures=wave_failures,
                            wave_shots=wave_shots,
                            failures=self.failures,
                            shots=self.sched.shots_done)
        self.waves_merged += 1
        return update

    def result(self) -> LerResult:
        return LerResult(task=self.item.task, failures=self.failures,
                         shots=self.sched.shots_done,
                         num_detectors=self.num_detectors,
                         num_dem_errors=self.num_dem,
                         num_shards=self.num_shards)


# ----------------------------------------------------------------------
# Worker-side execution (top-level so ProcessPoolExecutor can pickle it)
# ----------------------------------------------------------------------
#: Warm-context memo, guarded by ``_TASK_MEMO_LOCK``: pool workers own their
#: process, but the socket worker serves every connection on its own thread,
#: so concurrent ``_run_ler_shard`` calls land on this dict together.  Only
#: the memo bookkeeping is locked — pipeline builds run outside the lock, so
#: two threads racing on a cold key may both build; the last insert wins and
#: the loser's pipeline is simply garbage-collected (correct either way:
#: pipelines for one content hash are interchangeable).
_TASK_MEMO: Dict[str, tuple] = {}
_TASK_MEMO_LOCK = threading.Lock()


def _task_memo_limit(env=None) -> int:
    """Warm task contexts kept per worker (``REPRO_TASK_MEMO``, default 16).

    Cross-task interleaving rotates shards of every pending sweep task
    through each worker, so the memo must hold at least as many contexts as
    the sweep has concurrent tasks — otherwise every shard rebuilds the
    circuit/DEM/decoder it just evicted.  Raise this for very large sweeps
    (cost is memory per worker process: one pipeline + caches per entry).
    """
    return env_int("REPRO_TASK_MEMO", 16, minimum=1, env=env)


def _context_for(task: LerPointTask) -> tuple:
    """Build (or reuse) the warm decoding pipeline for a task in this process.

    The pipeline carries the circuit, the decoder and its geodesic/syndrome
    caches, keyed by the task's DEM-determining content hash; scheduler waves
    that re-enter the same task decode against warm caches.  The memo is
    LRU-bounded by :func:`_task_memo_limit`.
    """
    key = task.content_hash()
    with _TASK_MEMO_LOCK:
        ctx = _TASK_MEMO.pop(key, None)
    if ctx is None:
        circuit = task.build_circuit()
        dem = build_detector_error_model(circuit)
        graph = MatchingGraph(dem)
        if task.decoder == "mwpm":
            decoder = MwpmDecoder(graph)
        else:
            decoder = UnionFindDecoder(graph)
        pipeline = DecodingPipeline(circuit, decoder,
                                    rng_mode=task.rng_mode)
        memo_store = _memo_cache()
        if memo_store is not None:
            # Warm the syndrome memo from disk before the first shard (a
            # restarted worker skips the cold-start decode rebuild), and
            # arm _run_ler_shard to persist it back after each shard.
            pipeline.attach_memo_store(memo_store, key, task.decoder)
        ctx = (pipeline, len(dem))
    limit = _task_memo_limit()
    with _TASK_MEMO_LOCK:
        while len(_TASK_MEMO) >= limit:
            _TASK_MEMO.pop(next(iter(_TASK_MEMO)))
        _TASK_MEMO[key] = ctx  # (re-)insert at the recent end
    return ctx


def _run_ler_shard(task: LerPointTask, seed: Seed, shots: int) -> Tuple[int, int, int]:
    """Sample + decode one shard; returns (failures, detectors, dem errors)."""
    pipeline, dem_size = _context_for(task)
    stats = pipeline.run(shots, seed=seed)
    pipeline.persist_memo()
    return (int(stats.failures), int(pipeline.circuit.num_detectors),
            int(dem_size))


def _run_fused_shards(jobs: Sequence[Tuple[LerPointTask, Seed, int]]) -> List[Tuple[int, int, int]]:
    """Sample + decode one fused shard-group; one result triple per job.

    The worker-side half of heterogeneous task fusion: every job's warm
    pipeline is looked up (or built) in the task memo, the simulators are
    compiled into one :class:`~repro.stabilizer.packed.FusedProgram`, and a
    single invocation samples every segment against a shared draw scratch —
    N sweep points advance on one dispatch.  Each segment consumes exactly
    the RNG stream the unfused path binds to its (task, seed) coordinates,
    so every returned triple is bit-identical to ``_run_ler_shard(*job)``;
    fusion shares dispatch overhead, never variates.
    """
    contexts = [_context_for(task) for task, _, _ in jobs]
    program = FusedProgram([pipeline.simulator for pipeline, _ in contexts])
    sample_sets = program.run([(shots, seed) for _, seed, shots in jobs])
    out: List[Tuple[int, int, int]] = []
    for (pipeline, dem_size), samples, seconds in zip(
            contexts, sample_sets, program.segment_seconds):
        stats = pipeline.decode_samples(samples, sample_seconds=seconds,
                                        fused_tasks=len(jobs))
        pipeline.persist_memo()
        out.append((int(stats.failures),
                    int(pipeline.circuit.num_detectors), int(dem_size)))
    return out


def _plan_fused_groups(shards: Sequence[Tuple[str, int, object]], *,
                       fuse_tasks: int, fuse_shots: int,
                       target_groups: int = 1,
                       shot_budget: Optional[int] = None) -> List[List]:
    """Partition ready shard descriptors into dispatch groups.

    ``shards`` is a sequence of ``(rng_mode, shots, entry)`` triples in
    deterministic plan order; the returned groups partition the ``entry``
    objects, preserving that order within and across groups.  Grouping is
    *pure dispatch*: every shard's RNG stream is bound to its (task, seed,
    shard index) coordinates before planning, so any grouping — including
    the timing-dependent ``target_groups`` load split below — yields
    bit-identical results; only wall-clock and the fusion counters move.

    A shard is fusion-eligible when fusion is on (``fuse_tasks > 1``), its
    rng-weighted cost (:func:`~repro.engine.scheduler.rng_mode_shot_cost`)
    fits the ``fuse_shots`` budget, and its raw shot count fits the packed
    draw-scratch row budget
    (:func:`~repro.stabilizer.packed.fused_shot_budget`) — an oversized
    segment would force the shared scratch every other segment inherits to
    grow with it.  Ineligible shards dispatch as singletons.  Groups never
    mix rng modes: exact and bitgen segments draw different stream kinds
    and cannot share scratch.

    ``target_groups`` (the caller's free backend slots) caps group size at
    ``ceil(eligible / target_groups)`` so fusion never *serialises* work an
    idle worker could overlap — batching is only worth its dispatch saving
    once every slot already has something to chew on.
    """
    if shot_budget is None:
        shot_budget = fused_shot_budget()
    eligible = [fuse_tasks > 1 and shots <= shot_budget
                and rng_mode_shot_cost(mode, shots) <= fuse_shots
                for mode, shots, _ in shards]
    cap = min(fuse_tasks, -(-sum(eligible) // max(target_groups, 1)))
    groups: List[List] = []
    open_group: Dict[str, List] = {}   # rng_mode -> group accepting members
    open_cost: Dict[str, int] = {}
    for (mode, shots, entry), ok in zip(shards, eligible):
        if not ok or cap <= 1:
            groups.append([entry])
            continue
        cost = rng_mode_shot_cost(mode, shots)
        group = open_group.get(mode)
        if group is not None and (len(group) >= cap
                                  or open_cost[mode] + cost > fuse_shots):
            del open_group[mode], open_cost[mode]
            group = None
        if group is None:
            group = []
            groups.append(group)
            open_group[mode] = group
            open_cost[mode] = 0
        group.append(entry)
        open_cost[mode] += cost
    return groups


def _run_patch_attempts(task: PatchSampleTask, root_fp, start: int, stop: int) -> list:
    """Evaluate attempt indices [start, stop); return accepted defect sets.

    ``root_fp`` is the (entropy, spawn_key) fingerprint of the root seed, or
    ``None`` for OS entropy (in which case attempts use fresh entropy and the
    run is not reproducible - same as the legacy behaviour with seed=None).
    """
    from ..core.adaptation import adapt_patch
    from ..core.metrics import evaluate_patch

    layout = task.layout()
    model = task.defect_model()
    root = from_fingerprint(root_fp)
    accepted = []
    for idx in range(start, stop):
        stream = None if root is None else child_stream(root, idx)
        rng = np.random.default_rng(stream)
        defects = model.sample(layout, rng)
        patch = adapt_patch(layout, defects)
        if task.require_valid:
            if not patch.valid:
                continue
            if evaluate_patch(patch).distance < task.min_distance:
                continue
        accepted.append((idx,
                         sorted(tuple(q) for q in defects.faulty_qubits),
                         sorted((tuple(a), tuple(b))
                                for a, b in defects.faulty_links)))
    return accepted


def _run_yield_block(task: YieldTask, root_fp, start: int, stop: int) -> tuple:
    """Evaluate yield sample indices [start, stop); return merged counts.

    Thin task-unpacking shim over
    :func:`repro.chiplet.yield_model._evaluate_yield_block`, so the
    per-index RNG-stream contract (sample ``i`` draws child stream ``i`` of
    the root fingerprint) lives in exactly one place and the task-routed
    path can never drift from the estimator's direct fallback.
    """
    from ..chiplet.yield_model import _evaluate_yield_block

    return _evaluate_yield_block(task.chiplet_size, task.defect_model(),
                                 task.criterion(), task.allow_rotation,
                                 task.boundary_standard(), root_fp,
                                 start, stop)


def seeded_task_key(task, fp) -> str:
    """Cache key for runs fully determined by (task, seed fingerprint).

    Used by the yield and patch-sample paths, whose results depend on no
    other execution knob; LER keys additionally cover policy and shard size
    (:func:`ler_cache_key`).  Module-level so out-of-process layers (the
    service's coalescer and its cache-hit probe) mint exactly the key an
    engine run will write.
    """
    body = {"task": task.content_hash(), "seed": [list(fp[0]), list(fp[1])]}
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


_seeded_task_key = seeded_task_key  # backward-compatible private alias


def ler_cache_key(task: LerPointTask, seed: Seed, policy: ShotPolicy,
                  shard_size: int) -> Optional[str]:
    """Cache key of one LER run: everything that determines the numbers.

    Worker count, backend and hosts are deliberately excluded: results are
    invariant to where shards run (the backend parity suite enforces it), so
    a result computed by a remote socket fleet answers a later serial run
    and vice versa.  ``shard_size`` is included because the multi-shard
    stream split depends on it.  Returns ``None`` for unseeded runs, which
    are not reproducible and must never be cached (or coalesced).
    """
    fp = seed_fingerprint(seed)
    if fp is None:
        return None
    body = {
        "task": task.content_hash(),
        "seed": [list(fp[0]), list(fp[1])],
        "policy": policy.payload(),
        "shard_size": shard_size,
    }
    return hashlib.sha256(canonical_json(body).encode()).hexdigest()


def _ler_cache_record(task: LerPointTask, result: "LerResult") -> dict:
    """The on-disk record for one LER result (single shape for all writers)."""
    return {
        "kind": task.kind,
        "task_hash": task.content_hash(),
        "task": task.payload(),
        "failures": result.failures,
        "shots": result.shots,
        "num_detectors": result.num_detectors,
        "num_dem_errors": result.num_dem_errors,
        "num_shards": result.num_shards,
    }


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Engine:
    """Runs task specs: sharding, scheduling, caching, result merging.

    *Where* shards run is delegated to a pluggable
    :class:`~repro.engine.backends.Backend` built from the config
    (serial, local process pool, or remote socket workers); every
    execution path below — ``run_sweep``/``run_ler``, ``run_yield``,
    ``sample_patches``, ``starmap`` — routes through it, and all backends
    produce bit-identical numbers.
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config or EngineConfig()
        self._cache = (ResultCache(self.config.cache_dir)
                       if self.config.cache_dir else None)
        self._backend: Optional[Backend] = None
        #: Fusion counters of the most recent ``run_sweep`` (diagnostics
        #: only — fusion is invisible in the numbers and the cache).
        self.last_fusion: FusionStats = FusionStats()

    # ------------------------------------------------------------------
    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def backend(self) -> Backend:
        """The execution backend (built lazily from the config)."""
        if self._backend is None:
            self._backend = create_backend(
                self.config.backend,
                max_workers=self.config.max_workers,
                hosts=self.config.hosts,
            )
        return self._backend

    @property
    def parallel_slots(self) -> int:
        """Shards the backend can usefully keep in flight (throughput hint).

        Block/wave sizing only — never part of a cache key, because results
        are slot-count invariant.
        """
        return self.backend.parallel_slots

    def _cache_key(self, task, seed: Seed, policy: ShotPolicy) -> Optional[str]:
        """This engine's key for one LER run (see :func:`ler_cache_key`)."""
        return ler_cache_key(task, seed, policy, self.config.shard_size)

    def starmap(self, fn, jobs: Sequence[tuple]) -> List:
        """Run ``fn(*job)`` for every job, in order, on the backend.

        ``fn`` must be a module-level callable (picklable).  This is the
        generic fan-out primitive other Monte-Carlo layers (e.g. the chiplet
        yield estimator) build on; result order always matches job order,
        and a failing job cancels the rest of the batch instead of
        stranding it on the backend.
        """
        return self.backend.map(fn, jobs)

    # ------------------------------------------------------------------
    # LER tasks
    # ------------------------------------------------------------------
    def run_ler(
        self,
        task: LerPointTask,
        *,
        shots: Optional[int] = None,
        policy: Optional[ShotPolicy] = None,
        seed: Seed = None,
        on_wave=None,
    ) -> LerResult:
        """Run one LER task to completion under a shot policy.

        Exactly one of ``shots`` (fixed budget) or ``policy`` must be given.
        ``on_wave`` receives a :class:`WaveUpdate` after each merged wave.
        """
        policy = self._resolve_policy(shots, policy)
        return self.run_sweep([SweepItem(task, policy, seed)],
                              on_wave=on_wave)[0]

    def run_ler_many(
        self,
        tasks: Sequence[LerPointTask],
        *,
        shots: Optional[int] = None,
        policy: Optional[ShotPolicy] = None,
        seed: Seed = None,
        on_wave=None,
    ) -> List[LerResult]:
        """Run a batch of LER tasks; task ``i`` uses RNG child stream ``i``.

        The whole batch is one sweep: shards of *all* tasks are planned by
        per-task schedulers and interleaved into one pool submission, so an
        adaptive task draining its last wave no longer idles the workers
        that could already be running the next task's shards.
        """
        policy = self._resolve_policy(shots, policy)
        if seed is None:
            # Unseeded batches keep the legacy fresh-entropy-per-task
            # semantics; passing None through also keeps them out of the
            # cache (a key minted from OS entropy could never hit again).
            seeds: List[Seed] = [None] * len(tasks)
        else:
            root = as_seed_sequence(seed)
            seeds = [child_stream(root, i) for i in range(len(tasks))]
        return self.run_sweep([SweepItem(task, policy, s)
                               for task, s in zip(tasks, seeds)],
                              on_wave=on_wave)

    # ------------------------------------------------------------------
    def run_sweep(self, items: Sequence[SweepItem], *,
                  on_wave=None) -> List[LerResult]:
        """Run a batch of sweep items with cross-task shard interleaving.

        Every pending item gets its own :class:`ShotScheduler`; the planned
        shards of *all* items share one execution backend, and completed
        shards merge back per item under the wave rule (a scheduler only
        sees the summed statistics of its own complete waves).  Results are
        therefore **bit-identical to running the items one at a time** —
        determinism comes from per-item child RNG streams and the
        wave-merge rule, never from completion order or from where a shard
        ran — while adaptive waves of one item overlap with fixed shards of
        another instead of draining task-by-task.  On the serial backend
        the same loop simply executes each submitted shard inline, which
        reproduces the historical task-by-task numbers exactly.

        Items mix policies freely (the cutoff sweep's fixed cells next to an
        adaptive low-p point); cache hits are resolved up front and misses
        are written back per item as each item finishes.

        ``on_wave`` is an optional callback invoked in the submitting
        process with a :class:`WaveUpdate` after each item's wave merges —
        the hook partial-result consumers (the service's wave-by-wave
        persistence) build on.  It fires *before* the item's next wave is
        planned, so an exception raised by the callback (e.g. a job
        cancellation) aborts the sweep cleanly: outstanding shards are
        cancelled on the backend and the exception propagates.  Items
        resolved from cache never produce updates.

        Compatible pending shards are *fused* into shard-groups (see
        :func:`_plan_fused_groups`) so one backend dispatch advances many
        sweep points; grouping is pure dispatch — results and cache records
        stay bit-identical to unfused execution — and the realised grouping
        is reported on :attr:`last_fusion`.
        """
        self.last_fusion = FusionStats()
        results: List[Optional[LerResult]] = [None] * len(items)
        runs: List[_SweepTaskRun] = []
        for i, item in enumerate(items):
            key = (self._cache_key(item.task, item.seed, item.policy)
                   if self._cache is not None else None)
            hit = self._load_cached_ler(item.task, key) if key is not None else None
            if hit is not None:
                results[i] = hit
                continue
            run = _SweepTaskRun(i, item, self.config.shard_size)
            run.key = key
            runs.append(run)

        if runs:
            self._run_sweep_backend(runs, results, on_wave)
        return results  # type: ignore[return-value]

    def _finish_sweep_run(self, run: _SweepTaskRun, result: LerResult,
                          results: List[Optional[LerResult]]) -> None:
        results[run.index] = result
        if run.key is not None:
            self._cache.put(run.key, _ler_cache_record(run.item.task, result))

    def _run_sweep_backend(self, runs: List[_SweepTaskRun],
                           results: List[Optional[LerResult]],
                           on_wave=None) -> None:
        """Interleaved + fused execution: shards of all runs share dispatches.

        Planned shards collect in ``ready`` (deterministic plan order),
        then each flush partitions them into fused shard-groups
        (:func:`_plan_fused_groups`) and submits one backend call per
        group.  Because every shard's RNG stream is bound before planning,
        grouping affects wall-clock and the fusion counters only.
        """
        backend = self.backend
        fuse_tasks = self.config.fuse_tasks
        fuse_shots = self.config.fuse_shots
        pending: Dict = {}  # Future -> [(run, wave slot), ...] in job order
        ready: List = []    # (run, slot, seed, shots) awaiting dispatch
        unfinished = len(runs)
        counters = {"dispatches": 0, "fused_groups": 0, "fused_shards": 0,
                    "total_shards": 0, "fused_tasks": 0, "fused_shots": 0,
                    "total_shots": 0, "max_group_shards": 0}

        def notify(update: WaveUpdate) -> None:
            if on_wave is not None:
                on_wave(update)

        def plan_next_wave(run: _SweepTaskRun) -> None:
            nonlocal unfinished
            wave = run.sched.next_wave()
            if not wave:
                unfinished -= 1
                self._finish_sweep_run(run, run.result(), results)
                return
            run.begin_wave(wave)
            for slot, (idx, n) in enumerate(wave):
                ready.append((run, slot, run.shard_seed(idx), n))

        def complete(run: _SweepTaskRun, slot: int, out) -> None:
            if run.complete_slot(slot, out):
                notify(run.merge_wave())
                plan_next_wave(run)

        def record_group(group: List) -> None:
            shots = sum(n for _, _, _, n in group)
            counters["dispatches"] += 1
            counters["total_shards"] += len(group)
            counters["total_shots"] += shots
            counters["max_group_shards"] = max(
                counters["max_group_shards"], len(group))
            if len(group) >= 2:
                counters["fused_groups"] += 1
                counters["fused_shards"] += len(group)
                counters["fused_shots"] += shots
                counters["fused_tasks"] += len(
                    {id(run) for run, _, _, _ in group})

        def flush() -> None:
            while ready:
                free = max(backend.parallel_slots - len(pending), 1)
                entries = [(shard[0].item.task.rng_mode, shard[3], shard)
                           for shard in ready]
                groups = _plan_fused_groups(
                    entries, fuse_tasks=fuse_tasks, fuse_shots=fuse_shots,
                    target_groups=free)
                ready.clear()
                if (backend.inline_single_shard and unfinished == 1
                        and not pending and len(groups) == 1
                        and len(groups[0]) == 1):
                    # A lone shard with nothing to overlap: run it in the
                    # submitting process instead of paying round-trips
                    # (the pre-sweep starmap shortcut for single-job waves;
                    # remote backends opt out — their submitter may be a
                    # thin coordinator).
                    run, slot, seed, n = groups[0][0]
                    record_group(groups[0])
                    complete(run, slot, _run_ler_shard(run.item.task, seed, n))
                    continue  # completion may have planned the next wave
                for group in groups:
                    record_group(group)
                    if len(group) == 1:
                        run, slot, seed, n = group[0]
                        fut = backend.submit(
                            _run_ler_shard, (run.item.task, seed, n))
                    else:
                        jobs = tuple((run.item.task, seed, n)
                                     for run, _, seed, n in group)
                        fut = backend.submit(_run_fused_shards, (jobs,))
                    pending[fut] = [(run, slot) for run, slot, _, _ in group]
                return

        try:
            for run in runs:
                plan_next_wave(run)
            flush()
            while pending:
                done = backend.wait_any(pending)
                for fut in done:
                    slots = pending.pop(fut)
                    outs = fut.result()
                    if len(slots) == 1:
                        outs = [outs]
                    for (run, slot), out in zip(slots, outs):
                        complete(run, slot, out)
                flush()
            self.last_fusion = FusionStats(**counters)
        except BaseException as exc:
            # A failing shard (or an interrupt) must not strand the other
            # items' shards on the backend; give the backend a chance to
            # triage infrastructure failures (e.g. evict a broken pool).
            backend.note_failure(exc)
            for fut in pending:
                fut.cancel()
            raise

    # ------------------------------------------------------------------
    def _resolve_policy(self, shots: Optional[int],
                        policy: Optional[ShotPolicy]) -> ShotPolicy:
        if (shots is None) == (policy is None):
            raise ValueError("specify exactly one of shots= or policy=")
        return policy if policy is not None else ShotPolicy.fixed(shots)

    def _load_cached_ler(self, task: LerPointTask, key: str) -> Optional[LerResult]:
        record = self._cache.get(key)
        if record is None or record.get("task_hash") != task.content_hash():
            return None
        try:
            return LerResult(
                task=task,
                failures=int(record["failures"]),
                shots=int(record["shots"]),
                num_detectors=int(record["num_detectors"]),
                num_dem_errors=int(record["num_dem_errors"]),
                num_shards=int(record["num_shards"]),
                from_cache=True,
            )
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------
    # Patch-sample tasks
    # ------------------------------------------------------------------
    def sample_patches(self, task: PatchSampleTask, *,
                       seed: Seed = None) -> List[AdaptedPatch]:
        """Draw defective patches; deterministic in ``max_workers`` (see tasks).

        Workers return accepted *defect sets* (JSON-able coordinates); the
        adapted patches are rebuilt in the parent so nothing heavyweight
        crosses the process boundary or lands in the cache.
        """
        fp = seed_fingerprint(seed)
        key = None
        if self._cache is not None and fp is not None:
            key = _seeded_task_key(task, fp)
            record = self._cache.get(key)
            if record is not None and record.get("task_hash") == task.content_hash():
                try:
                    return self._rebuild_patches(task, record["accepted"])
                except (KeyError, TypeError, ValueError):
                    pass

        accepted = self._sample_patch_specs(task, fp)
        if key is not None:
            self._cache.put(key, {
                "kind": task.kind,
                "task_hash": task.content_hash(),
                "task": task.payload(),
                "accepted": [[idx, [list(q) for q in qubits],
                              [[list(a), list(b)] for a, b in links]]
                             for idx, qubits, links in accepted],
            })
        return self._rebuild_patches(task, accepted)

    def _sample_patch_specs(self, task: PatchSampleTask, fp) -> list:
        """First ``num_patches`` acceptances in attempt-index order."""
        max_attempts = task.max_attempts
        # Block = contiguous attempt range; sized so one wave of blocks
        # plausibly yields the whole batch while still splitting across the
        # backend's slots.  Purely a throughput knob - results only depend
        # on indices.
        block = max(1, min(64, (task.num_patches + 1) // 2 + 1))
        wave_blocks = max(2 * self.parallel_slots, 2)
        accepted: list = []
        start = 0
        while start < max_attempts and len(accepted) < task.num_patches:
            stops = []
            s = start
            for _ in range(wave_blocks):
                if s >= max_attempts:
                    break
                e = min(s + block, max_attempts)
                stops.append((s, e))
                s = e
            outs = self.starmap(
                _run_patch_attempts,
                [(task, fp, a, b) for a, b in stops],
            )
            for out in outs:
                accepted.extend(out)
            start = s
        accepted.sort(key=lambda item: item[0])
        return accepted[: task.num_patches]

    # ------------------------------------------------------------------
    # Yield tasks
    # ------------------------------------------------------------------
    def run_yield(self, task: YieldTask, *, seed: Seed = None):
        """Run a chiplet yield task; returns a :class:`YieldResult`.

        Sample blocks fan out over the worker pool and counts merge by plain
        summation; because sample ``i`` always draws RNG child stream ``i``
        of ``seed``, the result is identical for any worker count and block
        split.  Seeded runs land in the on-disk result cache under the
        task's content hash, exactly like LER tasks.
        """
        from ..chiplet.yield_model import YieldResult

        fp = seed_fingerprint(seed)
        key = None
        if self._cache is not None and fp is not None:
            key = _seeded_task_key(task, fp)
            record = self._cache.get(key)
            if record is not None and record.get("task_hash") == task.content_hash():
                try:
                    return YieldResult(
                        chiplet_size=task.chiplet_size,
                        defect_rate=task.defect_rate,
                        defect_model_kind=task.defect_model_kind,
                        samples=int(record["samples"]),
                        accepted=int(record["accepted"]),
                        distance_counts={int(d): int(c) for d, c in
                                         record["distance_counts"].items()},
                        accepted_distance_counts={int(d): int(c) for d, c in
                                                  record["accepted_distance_counts"].items()},
                        from_cache=True,
                    )
                except (AttributeError, KeyError, TypeError, ValueError):
                    pass

        from ..chiplet.yield_model import merge_yield_blocks, yield_block_ranges

        jobs = [(task, fp, start, stop)
                for start, stop in yield_block_ranges(
                    task.samples, self.parallel_slots)]
        accepted, distance_counts, accepted_counts = merge_yield_blocks(
            self.starmap(_run_yield_block, jobs))
        result = YieldResult(
            chiplet_size=task.chiplet_size,
            defect_rate=task.defect_rate,
            defect_model_kind=task.defect_model_kind,
            samples=task.samples,
            accepted=accepted,
            distance_counts=distance_counts,
            accepted_distance_counts=accepted_counts,
        )
        if key is not None:
            self._cache.put(key, {
                "kind": task.kind,
                "task_hash": task.content_hash(),
                "task": task.payload(),
                "samples": result.samples,
                "accepted": result.accepted,
                "distance_counts": {str(d): c for d, c in
                                    sorted(result.distance_counts.items())},
                "accepted_distance_counts": {str(d): c for d, c in
                                             sorted(result.accepted_distance_counts.items())},
            })
        return result

    @staticmethod
    def _rebuild_patches(task: PatchSampleTask, accepted) -> List[AdaptedPatch]:
        from ..core.adaptation import adapt_patch
        from ..noise.fabrication import DefectSet

        layout = task.layout()
        patches = []
        for _idx, qubits, links in accepted:
            defects = DefectSet.of(qubits=[tuple(q) for q in qubits],
                                   links=[(tuple(a), tuple(b)) for a, b in links])
            patches.append(adapt_patch(layout, defects))
        return patches


# ----------------------------------------------------------------------
# Process-wide default engine (configured from the environment)
# ----------------------------------------------------------------------
_DEFAULT_ENGINE: Optional[Engine] = None


def default_engine() -> Engine:
    """The engine used when drivers are not handed one explicitly.

    Configured once per process from ``REPRO_WORKERS`` / ``REPRO_CACHE`` /
    ``REPRO_SHARD_SIZE`` / ``REPRO_BACKEND`` / ``REPRO_HOSTS``; with no
    environment overrides it is a serial, cache-less engine whose numbers
    match the pre-engine code paths.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine(EngineConfig.from_env())
    return _DEFAULT_ENGINE


def set_default_engine(engine: Optional[Engine]) -> None:
    """Install (or with ``None``, reset) the process-wide default engine."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
