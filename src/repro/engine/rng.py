"""Deterministic RNG stream derivation for the execution engine.

All Monte-Carlo randomness in the engine flows through
:class:`numpy.random.SeedSequence`.  A *root* sequence is derived from the
user-facing seed, and every unit of work (a shard of shots, a curve point, a
sampled chiplet) draws its generator from a *child* stream addressed by
index.  Child streams are derived by extending the spawn key, which gives two
properties the old ``int(rng.integers(0, 2**31 - 1))`` pattern lacked:

* **Order independence** - stream ``i`` is the same no matter how many other
  streams were derived before it, so results do not depend on the order in
  which work is scheduled (or on how many workers execute it).
* **No collisions** - spawn keys address statistically independent streams by
  construction, whereas drawing 31-bit child seeds collides with noticeable
  probability after ~50k draws (birthday bound).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Seed",
    "as_seed_sequence",
    "child_stream",
    "spawn_streams",
    "seed_fingerprint",
    "from_fingerprint",
]

# Anything accepted as a user-facing seed.  ``None`` means fresh OS entropy
# (non-reproducible), matching numpy's convention.
Seed = Union[None, int, Sequence[int], np.random.SeedSequence]


def as_seed_sequence(seed: Seed) -> np.random.SeedSequence:
    """Normalise a user-facing seed into a ``SeedSequence`` root."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def child_stream(seed: Seed, index: int) -> np.random.SeedSequence:
    """Random-access child stream ``index`` of a root seed.

    Equivalent to ``as_seed_sequence(seed).spawn(index + 1)[index]`` but
    without mutating any spawn counter, so streams can be derived lazily, in
    any order, from any process.
    """
    if index < 0:
        raise ValueError("stream index must be non-negative")
    root = as_seed_sequence(seed)
    return np.random.SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (index,)
    )


def spawn_streams(seed: Seed, n: int) -> List[np.random.SeedSequence]:
    """The first ``n`` child streams of a root seed.

    ``spawn_streams(seed, n)[i] == child_stream(seed, i)`` for all ``i``.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of streams")
    return [child_stream(seed, i) for i in range(n)]


def seed_fingerprint(seed: Seed) -> Optional[Tuple]:
    """A canonical, JSON-able description of a seed for cache keys.

    Returns ``None`` for unseeded (OS-entropy) runs, which must never be
    cached because they are not reproducible.
    """
    if seed is None:
        return None
    seq = as_seed_sequence(seed)
    entropy = seq.entropy
    if entropy is None:  # SeedSequence() drew OS entropy: not reproducible
        return None
    if isinstance(entropy, int):
        entropy_key: Tuple[int, ...] = (int(entropy),)
    else:
        entropy_key = tuple(int(e) for e in entropy)
    return (entropy_key, tuple(int(k) for k in seq.spawn_key))


def from_fingerprint(fingerprint: Optional[Tuple]) -> Optional[np.random.SeedSequence]:
    """Rebuild the ``SeedSequence`` a fingerprint was taken from.

    ``None`` (an unseeded run) maps back to ``None``; workers receiving it
    fall back to fresh OS entropy, preserving the legacy seedless semantics.
    """
    if fingerprint is None:
        return None
    entropy_key, spawn_key = fingerprint
    return np.random.SeedSequence(entropy=list(entropy_key),
                                  spawn_key=tuple(spawn_key))
