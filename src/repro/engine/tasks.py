"""Frozen, hashable task specifications for the execution engine.

A :class:`TaskSpec` is a *complete, self-contained* description of a unit of
Monte-Carlo work, built only from primitive values (ints, floats, strings,
tuples).  That buys three things at once:

* tasks can be pickled to worker processes — local pool workers and remote
  ``repro.engine.worker`` hosts alike — without dragging circuit or decoder
  objects across the process (or machine) boundary;
* tasks have a **stable content hash** (canonical JSON + SHA-256), which keys
  the on-disk result cache and the per-worker circuit/decoder memo; cache
  keys add only what else determines the numbers (seed fingerprint, shot
  policy, shard size) and never where the work ran — execution backend,
  worker count and host list are all result-invariant;
* reconstruction is deterministic - ``adapt_patch`` and the circuit builders
  are pure functions of the spec fields, so every process rebuilds exactly
  the same computation.

Three task kinds cover the repo's Monte-Carlo workloads:

``LerPointTask``
    One logical-error-rate point: a (patch, noise, rounds, decoder) cell of a
    memory or stability experiment, sampled for some number of shots.
``CutoffCellTask``
    A ``LerPointTask`` subtype carrying the strategy metadata of the Sec. 6
    cutoff-fidelity sweep (keep vs disable, bad-qubit error rate).
``PatchSampleTask``
    A batch of defective-chiplet draws: sample fabrication defects, adapt the
    code, keep patches that stay valid above a minimum distance.
``YieldTask``
    A chiplet yield Monte-Carlo (Figs. 12-17): sample defective chiplets and
    measure the fraction accepted by a post-selection criterion, with the
    criterion and boundary standard mirrored into primitive fields.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.adaptation import adapt_patch
from ..core.patch import AdaptedPatch
from ..noise.circuit_noise import CircuitNoiseModel
from ..noise.fabrication import LINK_AND_QUBIT, LINK_ONLY, DefectModel, DefectSet
from ..stabilizer.packed import RNG_MODES
from ..surface_code.circuits import build_memory_circuit, build_stability_circuit
from ..surface_code.layout import RotatedSurfaceCodeLayout, StabilityLayout

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "NoiseSpec",
    "TaskSpec",
    "LerPointTask",
    "CutoffCellTask",
    "PatchSampleTask",
    "YieldTask",
    "TASK_KINDS",
    "task_from_payload",
    "canonical_json",
]

# Bump when the meaning of a task payload (or of the numbers it produces)
# changes; every cached result records the version it was produced under and
# stale entries are ignored.
ENGINE_SCHEMA_VERSION = 1

_DECODERS = ("mwpm", "unionfind")
_LAYOUTS = ("rotated", "stability")
_EXPERIMENTS = ("memory", "stability")


def canonical_json(obj) -> str:
    """Deterministic JSON encoding used for content hashes and cache keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _coords(coords) -> Tuple[Tuple[int, int], ...]:
    return tuple(sorted((int(x), int(y)) for x, y in coords))


def _links(links) -> Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...]:
    return tuple(sorted(((int(a[0]), int(a[1])), (int(b[0]), int(b[1])))
                        for a, b in links))


# ----------------------------------------------------------------------
# Noise specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoiseSpec:
    """Primitive-field mirror of :class:`CircuitNoiseModel` (hashable/JSON-able)."""

    p: float
    single_qubit_factor: float = 0.8
    readout_factor: float = 8.0 / 15.0
    idle_data_factor: float = 0.8
    reset_factor: float = 0.0
    bad_qubits: Tuple[Tuple[Tuple[int, int], float], ...] = ()

    @classmethod
    def from_model(cls, model: CircuitNoiseModel) -> "NoiseSpec":
        return cls(
            p=float(model.p),
            single_qubit_factor=float(model.single_qubit_factor),
            readout_factor=float(model.readout_factor),
            idle_data_factor=float(model.idle_data_factor),
            reset_factor=float(model.reset_factor),
            bad_qubits=tuple(sorted(((int(c[0]), int(c[1])), float(r))
                                    for c, r in model.bad_qubits)),
        )

    def to_model(self) -> CircuitNoiseModel:
        return CircuitNoiseModel(
            p=self.p,
            single_qubit_factor=self.single_qubit_factor,
            readout_factor=self.readout_factor,
            idle_data_factor=self.idle_data_factor,
            reset_factor=self.reset_factor,
            bad_qubits=self.bad_qubits,
        )

    def payload(self) -> dict:
        return {
            "p": self.p,
            "single_qubit_factor": self.single_qubit_factor,
            "readout_factor": self.readout_factor,
            "idle_data_factor": self.idle_data_factor,
            "reset_factor": self.reset_factor,
            "bad_qubits": [[[c[0], c[1]], r] for c, r in self.bad_qubits],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "NoiseSpec":
        """Inverse of :meth:`payload` (JSON lists back to hashable tuples)."""
        return cls(
            p=float(payload["p"]),
            single_qubit_factor=float(payload["single_qubit_factor"]),
            readout_factor=float(payload["readout_factor"]),
            idle_data_factor=float(payload["idle_data_factor"]),
            reset_factor=float(payload["reset_factor"]),
            bad_qubits=tuple(((int(c[0]), int(c[1])), float(r))
                             for c, r in payload["bad_qubits"]),
        )


# ----------------------------------------------------------------------
# Task specs
# ----------------------------------------------------------------------
class TaskSpec:
    """Common content-hash machinery; subclasses implement ``payload()``."""

    kind: str = "abstract"

    def payload(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def content_hash(self) -> str:
        body = {"schema": ENGINE_SCHEMA_VERSION, "kind": self.kind,
                "spec": self.payload()}
        return hashlib.sha256(canonical_json(body).encode()).hexdigest()


@dataclass(frozen=True)
class LerPointTask(TaskSpec):
    """One logical-error-rate measurement cell.

    The patch is described by (layout kind, size, defect set); the adaptation
    is recomputed deterministically wherever the task runs.

    ``rng_mode`` selects the sampler's variate stream: ``"exact"`` (the
    default) is the paper-exact per-target stream, ``"bitgen"`` the fast
    bit-level Bernoulli stream (see :mod:`repro.stabilizer.packed`).  The
    two streams produce statistically equivalent but not bit-identical
    numbers, so the field is part of the content hash — bitgen and exact
    results can never alias in the cache — and ``"exact"`` payloads omit it
    for backward-compatible hashes.
    """

    experiment: str                # "memory" or "stability"
    layout_kind: str               # "rotated" or "stability"
    size: int
    faulty_qubits: Tuple[Tuple[int, int], ...]
    faulty_links: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...]
    physical_error_rate: float
    rounds: int
    noise: NoiseSpec
    decoder: str = "mwpm"
    rng_mode: str = "exact"

    kind = "ler_point"

    def __post_init__(self) -> None:
        if self.experiment not in _EXPERIMENTS:
            raise ValueError(f"unknown experiment {self.experiment!r}")
        if self.layout_kind not in _LAYOUTS:
            raise ValueError(f"unknown layout kind {self.layout_kind!r}")
        if self.decoder not in _DECODERS:
            raise ValueError(f"unknown decoder {self.decoder!r}")
        if self.rng_mode not in RNG_MODES:
            raise ValueError(f"unknown rng_mode {self.rng_mode!r}")
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_patch(
        cls,
        experiment: str,
        patch: AdaptedPatch,
        physical_error_rate: float,
        *,
        rounds: Optional[int] = None,
        noise: Optional[CircuitNoiseModel] = None,
        decoder: str = "mwpm",
        rng_mode: str = "exact",
    ) -> "LerPointTask":
        """Describe an experiment on an already-adapted patch."""
        if noise is None:
            noise = CircuitNoiseModel.standard(physical_error_rate)
        if rounds is None:
            rounds = patch.layout.size
        layout_kind = ("stability" if isinstance(patch.layout, StabilityLayout)
                       else "rotated")
        return cls(
            experiment=experiment,
            layout_kind=layout_kind,
            size=patch.layout.size,
            faulty_qubits=_coords(patch.defects.faulty_qubits),
            faulty_links=_links(patch.defects.faulty_links),
            physical_error_rate=float(physical_error_rate),
            rounds=int(rounds),
            noise=NoiseSpec.from_model(noise),
            decoder=decoder,
            rng_mode=rng_mode,
        )

    # ------------------------------------------------------------------
    def layout(self) -> RotatedSurfaceCodeLayout:
        if self.layout_kind == "stability":
            return StabilityLayout(self.size)
        return RotatedSurfaceCodeLayout(self.size)

    def defects(self) -> DefectSet:
        return DefectSet.of(qubits=self.faulty_qubits, links=self.faulty_links)

    def patch(self) -> AdaptedPatch:
        return adapt_patch(self.layout(), self.defects())

    def build_circuit(self):
        patch = self.patch()
        noise = self.noise.to_model()
        if self.experiment == "stability":
            return build_stability_circuit(patch, noise, self.rounds)
        return build_memory_circuit(patch, noise, self.rounds)

    def payload(self) -> dict:
        out = {
            "experiment": self.experiment,
            "layout_kind": self.layout_kind,
            "size": self.size,
            "faulty_qubits": [list(c) for c in self.faulty_qubits],
            "faulty_links": [[list(a), list(b)] for a, b in self.faulty_links],
            "physical_error_rate": self.physical_error_rate,
            "rounds": self.rounds,
            "noise": self.noise.payload(),
            "decoder": self.decoder,
        }
        if self.rng_mode != "exact":
            # Omitted for the default: every pre-existing payload (and
            # content hash, and cache record) stays byte-identical.
            out["rng_mode"] = self.rng_mode
        return out

    # ------------------------------------------------------------------
    @classmethod
    def from_payload(cls, payload: dict) -> "LerPointTask":
        """Inverse of :meth:`payload`: rebuild the frozen spec from JSON data.

        Round-trip safe: ``type(t).from_payload(t.payload())`` equals ``t``
        and shares its content hash, which is what lets a service job store
        persist task payloads and hand them to workers on other machines.
        Field validation reruns in ``__post_init__``, so a tampered payload
        fails loudly instead of building a nonsense task.
        """
        return cls(
            experiment=str(payload["experiment"]),
            layout_kind=str(payload["layout_kind"]),
            size=int(payload["size"]),
            faulty_qubits=_coords(payload["faulty_qubits"]),
            faulty_links=_links(payload["faulty_links"]),
            physical_error_rate=float(payload["physical_error_rate"]),
            rounds=int(payload["rounds"]),
            noise=NoiseSpec.from_payload(payload["noise"]),
            decoder=str(payload["decoder"]),
            rng_mode=str(payload.get("rng_mode", "exact")),
            **cls._extra_fields_from_payload(payload),
        )

    @classmethod
    def _extra_fields_from_payload(cls, payload: dict) -> dict:
        """Subclass hook: extra constructor kwargs carried in the payload."""
        return {}


@dataclass(frozen=True)
class CutoffCellTask(LerPointTask):
    """One cell of the cutoff-fidelity sweep (Sec. 6 / Fig. 20).

    ``strategy`` is ``"keep"`` (bad qubit left in the code, elevated noise via
    ``noise.bad_qubits``) or ``"disable"`` (qubit excised, super-stabilizers
    formed).  The fields are part of the content hash so keep/disable cells
    never alias in the cache even when their circuits coincide.
    """

    strategy: str = "disable"
    bad_qubit_error_rate: Optional[float] = None

    kind = "cutoff_cell"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.strategy not in ("keep", "disable"):
            raise ValueError(f"unknown cutoff strategy {self.strategy!r}")

    def payload(self) -> dict:
        out = super().payload()
        out["strategy"] = self.strategy
        out["bad_qubit_error_rate"] = self.bad_qubit_error_rate
        return out

    @classmethod
    def _extra_fields_from_payload(cls, payload: dict) -> dict:
        rate = payload["bad_qubit_error_rate"]
        return {"strategy": str(payload["strategy"]),
                "bad_qubit_error_rate": None if rate is None else float(rate)}


@dataclass(frozen=True)
class PatchSampleTask(TaskSpec):
    """A batch of defective-chiplet draws with validity post-selection.

    Attempt ``i`` of the batch always consumes RNG child stream ``i`` of the
    run's root seed, so the accepted set is identical no matter how attempts
    are sharded across workers: the engine keeps the first ``num_patches``
    acceptances in attempt-index order.
    """

    size: int
    defect_model_kind: str
    defect_rate: float
    num_patches: int
    min_distance: int = 2
    require_valid: bool = True
    max_attempts_factor: int = 100

    kind = "patch_sample"

    def __post_init__(self) -> None:
        if self.defect_model_kind not in (LINK_ONLY, LINK_AND_QUBIT):
            raise ValueError(f"unknown defect model {self.defect_model_kind!r}")
        if self.num_patches <= 0:
            raise ValueError("num_patches must be positive")
        if self.max_attempts_factor <= 0:
            raise ValueError("max_attempts_factor must be positive")

    def layout(self) -> RotatedSurfaceCodeLayout:
        return RotatedSurfaceCodeLayout(self.size)

    def defect_model(self) -> DefectModel:
        return DefectModel(self.defect_model_kind, self.defect_rate)

    @property
    def max_attempts(self) -> int:
        return self.max_attempts_factor * self.num_patches

    def payload(self) -> dict:
        return {
            "size": self.size,
            "defect_model_kind": self.defect_model_kind,
            "defect_rate": self.defect_rate,
            "num_patches": self.num_patches,
            "min_distance": self.min_distance,
            "require_valid": self.require_valid,
            "max_attempts_factor": self.max_attempts_factor,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PatchSampleTask":
        """Inverse of :meth:`payload` (see :meth:`LerPointTask.from_payload`)."""
        return cls(
            size=int(payload["size"]),
            defect_model_kind=str(payload["defect_model_kind"]),
            defect_rate=float(payload["defect_rate"]),
            num_patches=int(payload["num_patches"]),
            min_distance=int(payload["min_distance"]),
            require_valid=bool(payload["require_valid"]),
            max_attempts_factor=int(payload["max_attempts_factor"]),
        )


_CRITERIA = ("distance", "defect_free")


@dataclass(frozen=True)
class YieldTask(TaskSpec):
    """A chiplet yield Monte-Carlo with post-selection (Figs. 12-17).

    Mirrors a :class:`~repro.chiplet.yield_model.YieldEstimator` run into
    primitive fields, so yield sweeps shard over the worker pool and land in
    the content-addressed on-disk cache exactly like LER tasks.  Sample ``i``
    of the batch always draws RNG child stream ``i`` of the run's root seed,
    so the counts are identical no matter how samples are blocked across
    workers.

    Only the repo's own criterion/boundary types are representable
    (:class:`DistanceCriterion`, :class:`DefectFreeCriterion`,
    :class:`BoundaryStandard`); estimators carrying custom objects fall back
    to the un-cached block fan-out (see :meth:`from_estimator`).
    """

    chiplet_size: int
    defect_model_kind: str
    defect_rate: float
    samples: int
    criterion_kind: str = "distance"
    target_distance: Optional[int] = None
    use_operator_count: bool = True
    allow_rotation: bool = False
    #: (name, require_no_deformation, all_edges, target_distance) or None
    boundary: Optional[Tuple[str, bool, bool, Optional[int]]] = None

    kind = "yield"

    def __post_init__(self) -> None:
        if self.defect_model_kind not in (LINK_ONLY, LINK_AND_QUBIT):
            raise ValueError(f"unknown defect model {self.defect_model_kind!r}")
        if self.samples <= 0:
            raise ValueError("samples must be positive")
        if self.criterion_kind not in _CRITERIA:
            raise ValueError(f"unknown criterion kind {self.criterion_kind!r}")
        if self.criterion_kind == "distance" and self.target_distance is None:
            raise ValueError("distance criterion requires target_distance")

    # ------------------------------------------------------------------
    @classmethod
    def from_estimator(cls, estimator, samples: int) -> Optional["YieldTask"]:
        """Primitive spec of a ``YieldEstimator.run(samples)`` call.

        Returns ``None`` when the estimator carries criterion, defect-model
        or boundary objects the spec cannot represent (custom subclasses
        would silently change meaning under an exact-type round-trip, so
        every check is deliberately ``type() is``, not ``isinstance``).
        """
        from ..core.postselection import DefectFreeCriterion, DistanceCriterion

        if type(estimator.defect_model) is not DefectModel:
            return None
        crit = estimator.criterion
        if type(crit) is DistanceCriterion:
            criterion_kind = "distance"
            target = int(crit.target_distance)
            use_ops = bool(crit.use_operator_count)
        elif type(crit) is DefectFreeCriterion:
            criterion_kind, target, use_ops = "defect_free", None, True
        else:
            return None
        boundary = None
        std = estimator.boundary_standard
        if std is not None:
            from ..chiplet.boundary import BoundaryStandard

            if type(std) is not BoundaryStandard:
                return None
            boundary = (std.name, bool(std.require_no_deformation),
                        bool(std.all_edges),
                        None if std.target_distance is None
                        else int(std.target_distance))
        return cls(
            chiplet_size=int(estimator.chiplet_size),
            defect_model_kind=estimator.defect_model.kind,
            defect_rate=float(estimator.defect_model.rate),
            samples=int(samples),
            criterion_kind=criterion_kind,
            target_distance=target,
            use_operator_count=use_ops,
            allow_rotation=bool(estimator.allow_rotation),
            boundary=boundary,
        )

    # ------------------------------------------------------------------
    def layout(self) -> RotatedSurfaceCodeLayout:
        return RotatedSurfaceCodeLayout(self.chiplet_size)

    def defect_model(self) -> DefectModel:
        return DefectModel(self.defect_model_kind, self.defect_rate)

    def criterion(self):
        from ..core.postselection import DefectFreeCriterion, DistanceCriterion

        if self.criterion_kind == "defect_free":
            return DefectFreeCriterion()
        return DistanceCriterion(self.target_distance, self.use_operator_count)

    def boundary_standard(self):
        if self.boundary is None:
            return None
        from ..chiplet.boundary import BoundaryStandard

        name, no_deformation, all_edges, target = self.boundary
        return BoundaryStandard(name, no_deformation, all_edges, target)

    def payload(self) -> dict:
        return {
            "chiplet_size": self.chiplet_size,
            "defect_model_kind": self.defect_model_kind,
            "defect_rate": self.defect_rate,
            "samples": self.samples,
            "criterion": {
                "kind": self.criterion_kind,
                "target_distance": self.target_distance,
                "use_operator_count": self.use_operator_count,
            },
            "allow_rotation": self.allow_rotation,
            "boundary": None if self.boundary is None else list(self.boundary),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "YieldTask":
        """Inverse of :meth:`payload` (see :meth:`LerPointTask.from_payload`)."""
        crit = payload["criterion"]
        target = crit["target_distance"]
        boundary = payload["boundary"]
        if boundary is not None:
            name, no_deformation, all_edges, b_target = boundary
            boundary = (str(name), bool(no_deformation), bool(all_edges),
                        None if b_target is None else int(b_target))
        return cls(
            chiplet_size=int(payload["chiplet_size"]),
            defect_model_kind=str(payload["defect_model_kind"]),
            defect_rate=float(payload["defect_rate"]),
            samples=int(payload["samples"]),
            criterion_kind=str(crit["kind"]),
            target_distance=None if target is None else int(target),
            use_operator_count=bool(crit["use_operator_count"]),
            allow_rotation=bool(payload["allow_rotation"]),
            boundary=boundary,
        )


# ----------------------------------------------------------------------
# Payload round-trip dispatch
# ----------------------------------------------------------------------
#: Registered task kinds, keyed by ``TaskSpec.kind`` — the dispatch table for
#: rebuilding a frozen spec from its persisted ``payload()``.
TASK_KINDS = {
    LerPointTask.kind: LerPointTask,
    CutoffCellTask.kind: CutoffCellTask,
    PatchSampleTask.kind: PatchSampleTask,
    YieldTask.kind: YieldTask,
}


def task_from_payload(kind: str, payload: dict) -> TaskSpec:
    """Rebuild any registered task spec from ``(task.kind, task.payload())``.

    The round trip preserves the content hash, so a payload persisted by a
    service front end reconstructs to a task whose cache key — and RNG
    streams, and therefore bytes — match a direct in-process run exactly.
    """
    try:
        cls = TASK_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown task kind {kind!r}; "
            f"valid kinds: {', '.join(sorted(TASK_KINDS))}"
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"{kind} task payload must be an object,"
                         f" got {payload!r}")
    try:
        return cls.from_payload(payload)
    except (KeyError, TypeError) as exc:
        # Mis-shaped payloads surface as ValueError so boundary validators
        # (e.g. the service API) can report them uniformly.
        raise ValueError(f"malformed {kind} task payload: {exc}") from exc
