"""Parallel Monte-Carlo execution engine.

The engine is the single entry point for the repo's Monte-Carlo work:

* :mod:`~repro.engine.tasks` - frozen, content-hashable task specs;
* :mod:`~repro.engine.rng` - collision-free ``SeedSequence`` stream derivation;
* :mod:`~repro.engine.scheduler` - adaptive shot allocation in waves;
* :mod:`~repro.engine.pipeline` - fused, chunked sample→decode→tally hot path
  (bit-packed frames, syndrome-deduplicated decoding, warm geodesic caches);
* :mod:`~repro.engine.cache` - content-addressed on-disk JSON result cache;
* :mod:`~repro.engine.backends` - pluggable execution strategies (serial,
  local process pool, multi-host TCP socket fleet), all bit-identical;
* :mod:`~repro.engine.worker` - the remote-worker entry point
  (``python -m repro.engine.worker``) the socket backend talks to;
* :mod:`~repro.engine.executor` - sharding, scheduling and merging on top
  of whichever backend the config selects.

Quick use::

    from repro.engine import Engine, EngineConfig, LerPointTask

    task = LerPointTask.from_patch("memory", patch, physical_error_rate=0.005)
    engine = Engine(EngineConfig(max_workers=4, cache_dir=".repro-cache"))
    result = engine.run_ler(task, shots=200_000, seed=7)

Results are bit-identical for any backend, worker count or host count;
reruns with a cache directory are near-instant.  The experiment drivers in
:mod:`repro.experiments` route through :func:`default_engine`, which reads
``REPRO_WORKERS`` / ``REPRO_CACHE`` / ``REPRO_SHARD_SIZE`` /
``REPRO_BACKEND`` / ``REPRO_HOSTS`` from the environment, so existing
scripts parallelise — across processes or hosts — without code changes.
"""

from .backends import (
    Backend,
    BackendError,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    create_backend,
)
from .cache import ResultCache
from .pipeline import DecodingPipeline, PipelineStats, default_chunk_shots
from .executor import (
    Engine,
    EngineConfig,
    FusionStats,
    LerResult,
    SweepItem,
    WaveUpdate,
    default_engine,
    ler_cache_key,
    seeded_task_key,
    set_default_engine,
)
from .rng import Seed, as_seed_sequence, child_stream, seed_fingerprint, spawn_streams
from .scheduler import ShotPolicy, ShotScheduler
from .tasks import (
    ENGINE_SCHEMA_VERSION,
    TASK_KINDS,
    CutoffCellTask,
    LerPointTask,
    NoiseSpec,
    PatchSampleTask,
    TaskSpec,
    YieldTask,
    task_from_payload,
)

__all__ = [
    "Backend",
    "BackendError",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketBackend",
    "create_backend",
    "DecodingPipeline",
    "PipelineStats",
    "default_chunk_shots",
    "Engine",
    "EngineConfig",
    "FusionStats",
    "LerResult",
    "SweepItem",
    "WaveUpdate",
    "default_engine",
    "set_default_engine",
    "ler_cache_key",
    "seeded_task_key",
    "ResultCache",
    "Seed",
    "as_seed_sequence",
    "child_stream",
    "seed_fingerprint",
    "spawn_streams",
    "ShotPolicy",
    "ShotScheduler",
    "ENGINE_SCHEMA_VERSION",
    "TASK_KINDS",
    "CutoffCellTask",
    "LerPointTask",
    "NoiseSpec",
    "PatchSampleTask",
    "TaskSpec",
    "YieldTask",
    "task_from_payload",
]
