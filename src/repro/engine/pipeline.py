"""Fused sample→decode→tally pipeline: the engine's decoding hot path.

One :class:`DecodingPipeline` owns everything needed to turn (shots, seed)
into a failure count for one circuit:

* a :class:`~repro.stabilizer.packed.PackedFrameSimulator` samples the
  detector record into bit-packed rows (64 shots per ``uint64`` word — the
  frame never materialises a dense boolean matrix);
* shots stream through the decoder in fixed-size chunks
  (``REPRO_CHUNK_SHOTS``, default 1024): each chunk is extracted *sparsely*
  (per-shot fired-detector index tuples) straight from the packed words, so
  the decode stage never materialises a dense boolean matrix and its peak
  memory is bounded by the chunk.  (Sampling itself is per-shard — chunked
  sampling would change the RNG draw order and break bit-identity — but the
  packed record is 8x smaller than the historical boolean arrays, and shard
  size is already capped by ``REPRO_SHARD_SIZE``.);
* the decoder's deduplicating batch path
  (:meth:`~repro.decoder.base.BatchDecoderBase.decode_fired_batch`) decodes
  each distinct syndrome once; its cross-batch memo and the matching graph's
  geodesic cache persist inside the pipeline object, so successive chunks,
  shards and scheduler waves reuse warm caches;
* failures are tallied by comparing predicted observable parity sets against
  the actual flipped-observable sets, shot by shot, without densifying.

The executor keeps one pipeline per task content hash per worker process
(:func:`repro.engine.executor._context_for`), which is what lets the
adaptive wave scheduler re-enter a warm pipeline wave after wave.

**Syndrome-memo persistence**: the decoder's cross-batch memo is the
product of real decode work — at d=5 a cold worker re-pays thousands of
Dijkstra-seeded matchings before its memo warms up.  When a content-
addressed cache directory is known (``memo_preload`` /
``attach_memo_store``), the pipeline saves the memo into it after runs
(atomic ``ResultCache`` writes keyed by task hash + decoder name) and a
fresh pipeline for the same task imports it before its first shard, so
restarted service workers and remote socket workers skip the cold-start
rebuild.  Persistence never changes numbers — decoding is a pure function
of the syndrome — and is gated by ``REPRO_MEMO_PERSIST`` (default on).

Determinism: the packed simulator draws the same RNG variates in the same
order as the unpacked one, and decoding is a pure function of each shot's
syndrome, so pipeline tallies are bit-identical to the historical
sample-then-``decode_batch`` path for any chunk size.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Optional

from ..decoder.base import BatchDecoderBase
from ..env import env_int, env_str
from ..stabilizer.circuit import Circuit
from ..stabilizer.packed import PackedFrameSimulator
from .cache import ResultCache
from .rng import Seed

__all__ = ["DecodingPipeline", "PipelineStats", "default_chunk_shots",
           "memo_cache_key", "memo_persist_enabled", "memo_preload"]

_DEFAULT_CHUNK_SHOTS = 1024


def default_chunk_shots(env=None) -> int:
    """Pipeline chunk size from ``REPRO_CHUNK_SHOTS`` (default 1024)."""
    return env_int("REPRO_CHUNK_SHOTS", _DEFAULT_CHUNK_SHOTS,
                   minimum=1, env=env)


def memo_persist_enabled(env=None) -> bool:
    """Whether syndrome-memo persistence is on (``REPRO_MEMO_PERSIST``).

    Default on — persistence is a pure warm-up optimisation that never
    changes numbers.  Set ``REPRO_MEMO_PERSIST=0`` to keep memos purely
    in-process (e.g. when benchmarking cold-start behaviour).
    """
    return env_int("REPRO_MEMO_PERSIST", 1, minimum=0, env=env) > 0


def memo_cache_key(task_hash: str, decoder_name: str) -> str:
    """Cache key of the persisted syndrome memo for (task, decoder).

    Hashed so memo records share the result cache's two-level hex layout;
    the decoder name is part of the key because MWPM and union-find memos
    for one circuit hold different parities and must never alias.
    """
    body = f"syndrome_memo:{task_hash}:{decoder_name}"
    return hashlib.sha256(body.encode()).hexdigest()


# Process-wide memo-store override installed by workers that learn their
# cache directory from arguments rather than the environment (service
# workers, remote socket workers).  ``None`` falls back to ``REPRO_CACHE``.
_MEMO_CACHE_DIR: Optional[str] = None


def memo_preload(cache_dir: Optional[str]) -> None:
    """Point this process's pipelines at ``cache_dir`` for memo warm-up.

    Service workers (``repro.service.runner``) and remote socket workers
    (``repro.engine.worker``) call this at startup with their resolved
    cache directory, *before* the first shard runs, so every pipeline the
    process builds imports any persisted syndrome memo up front.  Passing
    ``None`` resets to the ``REPRO_CACHE`` environment fallback.
    """
    global _MEMO_CACHE_DIR
    _MEMO_CACHE_DIR = cache_dir


def _memo_cache() -> Optional[ResultCache]:
    """The memo store for this process, or None when persistence is off."""
    if not memo_persist_enabled():
        return None
    root = _MEMO_CACHE_DIR or env_str("REPRO_CACHE")
    return ResultCache(root) if root else None


@dataclass(frozen=True)
class PipelineStats:
    """Tally and cache-efficiency counters of one pipeline run."""

    shots: int
    failures: int
    chunks: int
    distinct_syndromes: int     # syndromes actually decoded during this run
    memo_hits: int              # cross-chunk/cross-run syndrome memo hits
    empty_shots: int            # shots short-circuited on the empty syndrome
    sample_seconds: float = 0.0  # wall-clock spent in the packed sampler
    decode_seconds: float = 0.0  # wall-clock spent extracting/decoding/tallying
    memo_evictions: int = 0     # syndrome-memo LRU evictions during this run
    memo_size: int = 0          # memo entries held after the run
    fused_tasks: int = 1        # tasks in the fused shard-group this run rode in

    @property
    def dedup_factor(self) -> float:
        """Shots per actually-decoded syndrome (>= 1; higher is better)."""
        return self.shots / max(self.distinct_syndromes, 1)

    @property
    def shots_per_second(self) -> float:
        """End-to-end pipeline throughput over the timed run (0 when untimed).

        This is the per-shard series the BENCH JSON artifacts record, so the
        sample+decode trajectory is diffable across PRs.
        """
        total = self.sample_seconds + self.decode_seconds
        return self.shots / total if total > 0 else 0.0

    @property
    def memo_pressure(self) -> float:
        """Evictions per decoded syndrome this run (0 when the memo fits).

        Anything persistently above ~0 means the cross-batch syndrome memo
        (``REPRO_SYNDROME_CACHE``) is smaller than the working set and is
        churning; the BENCH decoder series records the raw counters so the
        knob can be sized from CI artifacts.
        """
        return self.memo_evictions / max(self.distinct_syndromes, 1)

    @property
    def sample_fraction(self) -> float:
        """Share of the run's wall-clock spent sampling (0 when untimed).

        With batched decoding in place, sampling is the pipeline's dominant
        cost at low physical error rates; this split is what the sampler
        benchmark tracks across PRs.
        """
        total = self.sample_seconds + self.decode_seconds
        return self.sample_seconds / total if total > 0 else 0.0


class DecodingPipeline:
    """Streams sample→decode→tally for one circuit with warm decoder caches."""

    def __init__(
        self,
        circuit: Circuit,
        decoder: BatchDecoderBase,
        *,
        chunk_shots: Optional[int] = None,
        rng_mode: str = "exact",
    ):
        if chunk_shots is None:
            chunk_shots = default_chunk_shots()
        if chunk_shots <= 0:
            raise ValueError("chunk_shots must be positive")
        self.circuit = circuit
        self.decoder = decoder
        self.chunk_shots = int(chunk_shots)
        self.rng_mode = rng_mode
        # One warm simulator for the pipeline's lifetime: the compiled
        # vectorised program is reused across runs (shards, scheduler
        # waves); only the RNG stream is replaced per run.
        self._sim = PackedFrameSimulator(circuit, rng_mode=rng_mode)
        # Syndrome-memo persistence state (attach_memo_store/persist_memo).
        self._memo_store: Optional[ResultCache] = None
        self._memo_key: Optional[str] = None
        self._memo_task_hash: Optional[str] = None
        self._memo_decoder_name: Optional[str] = None
        self._memo_saved_decodes = -1
        self.preloaded_memo_entries = 0

    # ------------------------------------------------------------------
    def attach_memo_store(self, cache: ResultCache, task_hash: str,
                          decoder_name: str) -> int:
        """Bind the pipeline to a persisted-memo slot and warm up from it.

        Imports any existing snapshot into the decoder immediately (the
        count lands in ``preloaded_memo_entries``) and arms
        :meth:`persist_memo` to write back after runs.  Returns the number
        of imported entries.
        """
        self._memo_store = cache
        self._memo_task_hash = task_hash
        self._memo_decoder_name = decoder_name
        self._memo_key = memo_cache_key(task_hash, decoder_name)
        record = cache.get(self._memo_key)
        if record and record.get("kind") == "syndrome_memo":
            self.preloaded_memo_entries = self.decoder.import_memo(
                record.get("entries", []))
        self._memo_saved_decodes = self.decoder.decoded_syndromes
        return self.preloaded_memo_entries

    def persist_memo(self) -> bool:
        """Write the decoder memo back to the attached store if it grew.

        A no-op without :meth:`attach_memo_store` or when no new syndrome
        has been decoded since the last save — so the executor can call
        this after every shard without re-serialising an unchanged memo.
        """
        if self._memo_store is None:
            return False
        decoded = self.decoder.decoded_syndromes
        if decoded == self._memo_saved_decodes:
            return False
        self._memo_store.put(self._memo_key, {
            "kind": "syndrome_memo",
            "task_hash": self._memo_task_hash,
            "decoder": self._memo_decoder_name,
            "entries": self.decoder.export_memo(),
        })
        self._memo_saved_decodes = decoded
        return True

    # ------------------------------------------------------------------
    @property
    def simulator(self) -> PackedFrameSimulator:
        """The pipeline's warm simulator (compiled program reused across runs).

        Exposed for the fused execution layer, which compiles several
        pipelines' simulators into one
        :class:`~repro.stabilizer.packed.FusedProgram`; reseeding it per
        request is exactly what :meth:`run` does, so borrowing it never
        perturbs the stream a later unfused run would draw.
        """
        return self._sim

    def run(self, shots: int, seed: Seed = None) -> PipelineStats:
        """Sample ``shots`` under ``seed``, decode in chunks, tally failures.

        Bit-identical to ``FrameSimulator(circuit, seed).sample(shots)``
        followed by ``decoder.decode_batch`` + ``logical_error_count`` — the
        chunk size changes memory traffic, never the numbers.
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        t0 = time.perf_counter()
        samples = self._sim.reseed(seed).sample(shots)
        t1 = time.perf_counter()
        return self.decode_samples(samples, sample_seconds=t1 - t0)

    def decode_samples(self, samples, *, sample_seconds: float = 0.0,
                       fused_tasks: int = 1) -> PipelineStats:
        """Decode already-sampled packed detector data in chunks and tally.

        The decode half of :meth:`run`, split out so the fused execution
        layer can sample several tasks in one
        :class:`~repro.stabilizer.packed.FusedProgram` invocation and still
        route each segment through its own pipeline's warm decoder caches.
        ``sample_seconds`` carries the caller's measured sampling time into
        the stats; ``fused_tasks`` records how many tasks shared the
        sampling dispatch (1 for unfused runs).  Decoding is a pure function
        of the syndromes, so the split can never change a tally.
        """
        shots = int(samples.num_shots)
        if shots <= 0:
            raise ValueError("shots must be positive")
        decoder = self.decoder
        decoded_before = decoder.decoded_syndromes
        memo_before = decoder.memo_hits
        evictions_before = decoder.memo_evictions

        t1 = time.perf_counter()
        failures = 0
        empty_shots = 0
        chunks = 0
        for start in range(0, shots, self.chunk_shots):
            stop = min(start + self.chunk_shots, shots)
            fired = samples.fired_detectors(start, stop)
            actual = samples.flipped_observables(start, stop)
            predictions = decoder.decode_fired_batch(fired, assume_canonical=True)
            for syndrome, parity, actual_flips in zip(fired, predictions, actual):
                if not syndrome:
                    empty_shots += 1
                if parity.symmetric_difference(actual_flips):
                    failures += 1
            chunks += 1
        t2 = time.perf_counter()

        return PipelineStats(
            shots=shots,
            failures=failures,
            chunks=chunks,
            distinct_syndromes=decoder.decoded_syndromes - decoded_before,
            memo_hits=decoder.memo_hits - memo_before,
            empty_shots=empty_shots,
            sample_seconds=sample_seconds,
            decode_seconds=t2 - t1,
            memo_evictions=decoder.memo_evictions - evictions_before,
            memo_size=decoder.memo_size,
            fused_tasks=int(fused_tasks),
        )
